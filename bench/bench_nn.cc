// Micro-benchmarks (google-benchmark) for the nn compute layer: the
// im2col+GEMM Conv2d against the naive reference kernel at the
// CIFAR-like acceptance shape (3→32 channels, 32×32, k=3), raw GEMM
// throughput, batched Linear, and a full DP worker local step
// (HonestDpWorker::ComputeUpdate) on both MLP and CNN models.
//
// Before timing, main() asserts the GEMM conv is bit-identical under
// serial and parallel pools at the acceptance shape, mirroring
// bench_micro's Krum determinism check.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "data/synthetic.h"
#include "fl/worker.h"
#include "nn/conv2d.h"
#include "nn/gemm.h"
#include "nn/group_norm.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/model_zoo.h"
#include "nn/pooling.h"
#include "nn/sequential.h"

namespace {

using namespace dpbr;

// The acceptance shape: 3→32 channels, 32×32 input, k=3, same padding.
constexpr size_t kInCh = 3;
constexpr size_t kOutCh = 32;
constexpr size_t kImg = 32;
constexpr size_t kKernel = 3;
constexpr size_t kPad = 1;

Tensor RandomImage(uint64_t seed) {
  SplitRng rng(seed);
  Tensor x({kInCh, kImg, kImg});
  x.FillGaussian(&rng, 1.0);
  return x;
}

nn::Conv2d MakeConv(nn::Conv2dKernel kernel) {
  nn::Conv2d conv(kInCh, kOutCh, kKernel, kPad, kernel);
  SplitRng rng(3);
  conv.InitParams(&rng);
  return conv;
}

void ConvForward(benchmark::State& state, nn::Conv2dKernel kernel) {
  nn::Conv2d conv = MakeConv(kernel);
  Tensor x = RandomImage(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.Forward(x));
  }
  state.SetItemsProcessed(state.iterations() * kOutCh * kImg * kImg);
}

void BM_Conv2dForward(benchmark::State& state) {
  ConvForward(state, nn::Conv2dKernel::kGemm);
}
BENCHMARK(BM_Conv2dForward)->Unit(benchmark::kMicrosecond);

void BM_Conv2dForwardNaive(benchmark::State& state) {
  ConvForward(state, nn::Conv2dKernel::kNaive);
}
BENCHMARK(BM_Conv2dForwardNaive)->Unit(benchmark::kMicrosecond);

void ConvBackward(benchmark::State& state, nn::Conv2dKernel kernel) {
  nn::Conv2d conv = MakeConv(kernel);
  Tensor x = RandomImage(5);
  Tensor y = conv.Forward(x);
  SplitRng rng(7);
  Tensor gy(y.shape());
  gy.FillGaussian(&rng, 1.0);
  for (auto _ : state) {
    conv.ZeroGrad();
    benchmark::DoNotOptimize(conv.Backward(gy));
  }
  state.SetItemsProcessed(state.iterations() * kOutCh * kImg * kImg);
}

void BM_Conv2dBackward(benchmark::State& state) {
  ConvBackward(state, nn::Conv2dKernel::kGemm);
}
BENCHMARK(BM_Conv2dBackward)->Unit(benchmark::kMicrosecond);

void BM_Conv2dBackwardNaive(benchmark::State& state) {
  ConvBackward(state, nn::Conv2dKernel::kNaive);
}
BENCHMARK(BM_Conv2dBackwardNaive)->Unit(benchmark::kMicrosecond);

// --- Batched conv forward: the fused single-GEMM path against the same
// work run example-by-example (what ForwardBatch did before the fusion).

constexpr size_t kBatch = 16;

Tensor RandomBatch(uint64_t seed) {
  SplitRng rng(seed);
  Tensor x({kBatch, kInCh, kImg, kImg});
  x.FillGaussian(&rng, 1.0);
  return x;
}

void BM_Conv2dForwardBatch(benchmark::State& state) {
  nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
  Tensor x = RandomBatch(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.ForwardBatch(x));
  }
  state.SetItemsProcessed(state.iterations() * kBatch * kOutCh * kImg *
                          kImg);
}
BENCHMARK(BM_Conv2dForwardBatch)->Unit(benchmark::kMicrosecond);

void BM_Conv2dForwardBatchPerExample(benchmark::State& state) {
  nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
  Tensor x = RandomBatch(13);
  size_t feat = kInCh * kImg * kImg;
  std::vector<Tensor> examples;
  for (size_t ex = 0; ex < kBatch; ++ex) {
    examples.emplace_back(
        std::vector<size_t>{kInCh, kImg, kImg},
        std::vector<float>(x.data() + ex * feat,
                           x.data() + (ex + 1) * feat));
  }
  for (auto _ : state) {
    for (const Tensor& example : examples) {
      benchmark::DoNotOptimize(conv.Forward(example));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch * kOutCh * kImg *
                          kImg);
}
BENCHMARK(BM_Conv2dForwardBatchPerExample)->Unit(benchmark::kMicrosecond);

// --- Batched conv backward: the fused single-dispatch path (per-example
// dW/db rows into the sink + dX via col2im) against the same work run
// example by example. The cached-state contract ties every per-example
// Backward to its own Forward, so both sides time a full
// forward+backward round trip — the forward work is identical, so the
// ratio isolates the backward dispatch shape.

void BM_Conv2dBackwardBatch(benchmark::State& state) {
  nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
  Tensor x = RandomBatch(13);
  SplitRng rng(29);
  Tensor gy({kBatch, kOutCh, kImg, kImg});
  gy.FillGaussian(&rng, 1.0);
  size_t dim = conv.NumParams();
  std::vector<float> sink(kBatch * dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(conv.ForwardBatch(x));
    std::fill(sink.begin(), sink.end(), 0.0f);
    benchmark::DoNotOptimize(conv.BackwardBatch(gy, {sink.data(), dim, 0}));
  }
  state.SetItemsProcessed(state.iterations() * kBatch * kOutCh * kImg *
                          kImg);
}
BENCHMARK(BM_Conv2dBackwardBatch)->Unit(benchmark::kMicrosecond);

void BM_Conv2dBackwardBatchPerExample(benchmark::State& state) {
  nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
  Tensor x = RandomBatch(13);
  SplitRng rng(29);
  Tensor gyb({kBatch, kOutCh, kImg, kImg});
  gyb.FillGaussian(&rng, 1.0);
  size_t feat = kInCh * kImg * kImg;
  size_t out_stride = kOutCh * kImg * kImg;
  std::vector<Tensor> examples, grads;
  for (size_t ex = 0; ex < kBatch; ++ex) {
    examples.emplace_back(
        std::vector<size_t>{kInCh, kImg, kImg},
        std::vector<float>(x.data() + ex * feat, x.data() + (ex + 1) * feat));
    grads.emplace_back(
        std::vector<size_t>{kOutCh, kImg, kImg},
        std::vector<float>(gyb.data() + ex * out_stride,
                           gyb.data() + (ex + 1) * out_stride));
  }
  for (auto _ : state) {
    for (size_t ex = 0; ex < kBatch; ++ex) {
      benchmark::DoNotOptimize(conv.Forward(examples[ex]));
      conv.ZeroGrad();
      benchmark::DoNotOptimize(conv.Backward(grads[ex]));
    }
  }
  state.SetItemsProcessed(state.iterations() * kBatch * kOutCh * kImg *
                          kImg);
}
BENCHMARK(BM_Conv2dBackwardBatchPerExample)->Unit(benchmark::kMicrosecond);

// Batched Linear backward (one dispatch: dW/db sink rows + dX rows) at
// the e2e model shape, against the per-example reference.
void BM_LinearBackwardBatch(benchmark::State& state) {
  nn::Linear linear(512, 32);
  SplitRng rng(11);
  linear.InitParams(&rng);
  Tensor x({16, 512});
  x.FillGaussian(&rng, 1.0);
  Tensor gy({16, 32});
  gy.FillGaussian(&rng, 1.0);
  size_t dim = linear.NumParams();
  std::vector<float> sink(16 * dim);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear.ForwardBatch(x));
    std::fill(sink.begin(), sink.end(), 0.0f);
    benchmark::DoNotOptimize(
        linear.BackwardBatch(gy, {sink.data(), dim, 0}));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 512 * 32);
}
BENCHMARK(BM_LinearBackwardBatch)->Unit(benchmark::kMicrosecond);

void BM_LinearBackwardBatchPerExample(benchmark::State& state) {
  nn::Linear linear(512, 32);
  SplitRng rng(11);
  linear.InitParams(&rng);
  Tensor xb({16, 512});
  xb.FillGaussian(&rng, 1.0);
  Tensor gyb({16, 32});
  gyb.FillGaussian(&rng, 1.0);
  std::vector<Tensor> examples, grads;
  for (size_t ex = 0; ex < 16; ++ex) {
    examples.emplace_back(
        std::vector<size_t>{512},
        std::vector<float>(xb.data() + ex * 512,
                           xb.data() + (ex + 1) * 512));
    grads.emplace_back(std::vector<size_t>{32},
                       std::vector<float>(gyb.data() + ex * 32,
                                          gyb.data() + (ex + 1) * 32));
  }
  for (auto _ : state) {
    for (size_t ex = 0; ex < 16; ++ex) {
      benchmark::DoNotOptimize(linear.Forward(examples[ex]));
      linear.ZeroGrad();
      benchmark::DoNotOptimize(linear.Backward(grads[ex]));
    }
  }
  state.SetItemsProcessed(state.iterations() * 16 * 512 * 32);
}
BENCHMARK(BM_LinearBackwardBatchPerExample)->Unit(benchmark::kMicrosecond);

// --- Batched GroupNorm / pooling: one threaded dispatch per microbatch
// (previously a serial per-example loop inside ForwardBatch). Shape is
// the post-conv CNN stage activation: (16, 32, 32, 32).

Tensor RandomStageBatch(uint64_t seed) {
  SplitRng rng(seed);
  Tensor x({kBatch, kOutCh, kImg, kImg});
  x.FillGaussian(&rng, 1.0);
  return x;
}

void BM_GroupNormForwardBatch(benchmark::State& state) {
  nn::GroupNorm gn(4, kOutCh, 1e-5, /*affine=*/false);
  Tensor x = RandomStageBatch(17);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gn.ForwardBatch(x));
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_GroupNormForwardBatch)->Unit(benchmark::kMicrosecond);

void BM_GroupNormBackwardBatch(benchmark::State& state) {
  nn::GroupNorm gn(4, kOutCh, 1e-5, /*affine=*/false);
  Tensor x = RandomStageBatch(17);
  Tensor y = gn.ForwardBatch(x);
  SplitRng rng(19);
  Tensor gy(y.shape());
  gy.FillGaussian(&rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(gn.BackwardBatch(gy, {}));
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_GroupNormBackwardBatch)->Unit(benchmark::kMicrosecond);

void BM_PoolForwardBatch(benchmark::State& state) {
  nn::AdaptiveAvgPool2d pool(4, 4);
  Tensor x = RandomStageBatch(23);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pool.ForwardBatch(x));
  }
  state.SetItemsProcessed(state.iterations() * x.size());
}
BENCHMARK(BM_PoolForwardBatch)->Unit(benchmark::kMicrosecond);

// Raw GEMM throughput at the conv-lowered shape:
// (32 × 27) · (27 × 1024) per forward.
void BM_GemmConvShape(benchmark::State& state) {
  size_t m = kOutCh, k = kInCh * kKernel * kKernel, n = kImg * kImg;
  SplitRng rng(9);
  std::vector<float> a(m * k), b(k * n), c(m * n);
  rng.FillGaussian(a.data(), a.size(), 1.0);
  rng.FillGaussian(b.data(), b.size(), 1.0);
  for (auto _ : state) {
    nn::GemmNN(m, k, n, a.data(), b.data(), c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * m * k * n);
}
BENCHMARK(BM_GemmConvShape)->Unit(benchmark::kMicrosecond);

// Batched Linear forward at the e2e model shape (batch 16, 512→32).
void BM_LinearForwardBatch(benchmark::State& state) {
  nn::Linear linear(512, 32);
  SplitRng rng(11);
  linear.InitParams(&rng);
  Tensor x({16, 512});
  x.FillGaussian(&rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(linear.ForwardBatch(x));
  }
  state.SetItemsProcessed(state.iterations() * 16 * 512 * 32);
}
BENCHMARK(BM_LinearForwardBatch)->Unit(benchmark::kMicrosecond);

data::DatasetBundle ImageBundle(size_t side) {
  data::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.feature_dim = side * side;
  spec.image_h = side;
  spec.image_w = side;
  spec.train_size = 256;
  spec.val_size = 32;
  spec.test_size = 32;
  auto b = data::GenerateSynthetic(spec, 13);
  if (!b.ok()) {
    std::fprintf(stderr, "FATAL: synthetic bundle: %s\n",
                 b.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(b).value();
}

data::DatasetBundle FlatBundle() {
  data::SyntheticSpec spec;
  spec.num_classes = 10;
  spec.feature_dim = 64;
  spec.train_size = 256;
  spec.val_size = 32;
  spec.test_size = 32;
  auto b = data::GenerateSynthetic(spec, 13);
  if (!b.ok()) {
    std::fprintf(stderr, "FATAL: synthetic bundle: %s\n",
                 b.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(b).value();
}

// One full DP local step (Algorithm 1 lines 5-11): microbatch gradients,
// momentum, normalization, upload — the per-round unit of worker cost.
void LocalStep(benchmark::State& state, const data::DatasetBundle& bundle,
               nn::ModelFactory factory) {
  fl::WorkerOptions opts;
  opts.batch_size = 16;
  opts.sigma = 0.3;
  fl::HonestDpWorker worker(0, data::DatasetView::All(&bundle.train),
                            factory, opts, 17);
  std::vector<float> params(worker.dim(), 0.01f);
  int round = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(worker.ComputeUpdate(params, round++));
  }
  state.counters["d"] = static_cast<double>(worker.dim());
  state.SetItemsProcessed(state.iterations() * opts.batch_size);
}

void BM_LocalStepMlp(benchmark::State& state) {
  data::DatasetBundle bundle = FlatBundle();
  LocalStep(state, bundle, nn::MlpFactory(64, 128, 10));
}
BENCHMARK(BM_LocalStepMlp)->Unit(benchmark::kMillisecond);

void BM_LocalStepCnn(benchmark::State& state) {
  data::DatasetBundle bundle = ImageBundle(32);
  LocalStep(state, bundle, nn::CnnFactory(1, kOutCh, kKernel, 10));
}
BENCHMARK(BM_LocalStepCnn)->Unit(benchmark::kMillisecond);

// --- Whole-CNN batched step, fused (FusionPlan active, ~3 dispatches
// per direction) against the plain one-dispatch-per-layer loop
// (SetFusionEnabled(false)). Forward-only and forward+loss+backward
// variants; the fused/unfused pairs feed parity-floor ratio gates in
// scripts/check_bench_regression.py. The backward variants time the
// full round trip (the cached-state contract ties each backward to its
// own forward), so the ratio there mixes both directions.

std::unique_ptr<nn::Sequential> StepCnn(bool fused, SplitRng* rng) {
  std::unique_ptr<nn::Sequential> model =
      nn::CnnFactory(1, kOutCh, kKernel, 10)();
  model->SetFusionEnabled(fused);
  model->InitParams(rng);
  return model;
}

void LocalStepCnnForward(benchmark::State& state, bool fused) {
  SplitRng rng(31);
  std::unique_ptr<nn::Sequential> model = StepCnn(fused, &rng);
  constexpr size_t kN = 16;
  Tensor batch({kN, 1, kImg, kImg});
  batch.FillGaussian(&rng, 1.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model->ForwardBatch(batch));
  }
  state.SetItemsProcessed(state.iterations() * kN);
}

void BM_LocalStepCnnForward(benchmark::State& state) {
  LocalStepCnnForward(state, /*fused=*/true);
}
BENCHMARK(BM_LocalStepCnnForward)->Unit(benchmark::kMillisecond);

void BM_LocalStepCnnForwardUnfused(benchmark::State& state) {
  LocalStepCnnForward(state, /*fused=*/false);
}
BENCHMARK(BM_LocalStepCnnForwardUnfused)->Unit(benchmark::kMillisecond);

// The backward-dominated unit of the worker step in isolation: batched
// forward + loss + per-example-gradient backward through the whole CNN.
// This is the surface the batched backward GEMMs and the fused stages
// accelerate (BM_LocalStepCnn adds clipping, momentum and noise on top).
void LocalStepCnnBackward(benchmark::State& state, bool fused) {
  SplitRng rng(31);
  std::unique_ptr<nn::Sequential> model = StepCnn(fused, &rng);
  constexpr size_t kN = 16;
  Tensor batch({kN, 1, kImg, kImg});
  batch.FillGaussian(&rng, 1.0);
  std::vector<size_t> labels(kN);
  for (size_t ex = 0; ex < kN; ++ex) labels[ex] = ex % 10;
  size_t dim = model->NumParams();
  std::vector<float> grads(kN * dim);
  for (auto _ : state) {
    Tensor logits = model->ForwardBatch(batch);
    nn::BatchLossGrad lg = nn::SoftmaxCrossEntropyBatch(logits, labels);
    benchmark::DoNotOptimize(
        model->BackwardBatchTo(lg.grad_logits, kN, grads.data()));
  }
  state.counters["d"] = static_cast<double>(dim);
  state.SetItemsProcessed(state.iterations() * kN);
}

void BM_LocalStepCnnBackward(benchmark::State& state) {
  LocalStepCnnBackward(state, /*fused=*/true);
}
BENCHMARK(BM_LocalStepCnnBackward)->Unit(benchmark::kMillisecond);

void BM_LocalStepCnnBackwardUnfused(benchmark::State& state) {
  LocalStepCnnBackward(state, /*fused=*/false);
}
BENCHMARK(BM_LocalStepCnnBackwardUnfused)->Unit(benchmark::kMillisecond);

// GEMM conv must agree with itself bit-for-bit across pool sizes, and
// with the naive kernel to 1e-4 — checked before the timing loops so a
// regression fails the bench smoke job loudly.
void CheckConvDeterminism() {
  size_t hw = std::max<size_t>(4, std::thread::hardware_concurrency());
  Tensor x = RandomImage(5);
  std::vector<Tensor> outs;
  for (size_t threads : {size_t{1}, size_t{2}, hw}) {
    ThreadPool pool(threads);
    ScopedPoolOverride override_pool(&pool);
    nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
    outs.push_back(conv.Forward(x));
  }
  for (size_t i = 1; i < outs.size(); ++i) {
    for (size_t j = 0; j < outs[0].size(); ++j) {
      if (outs[0][j] != outs[i][j]) {
        std::fprintf(stderr,
                     "FATAL: GEMM conv differs across pool sizes\n");
        std::exit(1);
      }
    }
  }
  nn::Conv2d naive = MakeConv(nn::Conv2dKernel::kNaive);
  Tensor yn = naive.Forward(x);
  for (size_t j = 0; j < yn.size(); ++j) {
    double scale = std::max(1.0, std::abs(static_cast<double>(yn[j])));
    if (std::abs(static_cast<double>(yn[j]) - outs[0][j]) > 1e-4 * scale) {
      std::fprintf(stderr, "FATAL: GEMM conv diverges from naive kernel\n");
      std::exit(1);
    }
  }
  // The fused batch forward must reproduce the per-example forward bit
  // for bit (same per-element accumulation order).
  nn::Conv2d conv = MakeConv(nn::Conv2dKernel::kGemm);
  Tensor xb = RandomBatch(13);
  Tensor yb = conv.ForwardBatch(xb);
  size_t feat = kInCh * kImg * kImg;
  size_t out_stride = kOutCh * kImg * kImg;
  for (size_t ex = 0; ex < kBatch; ++ex) {
    Tensor one({kInCh, kImg, kImg},
               std::vector<float>(xb.data() + ex * feat,
                                  xb.data() + (ex + 1) * feat));
    Tensor y = conv.Forward(one);
    for (size_t j = 0; j < y.size(); ++j) {
      if (yb[ex * out_stride + j] != y[j]) {
        std::fprintf(
            stderr,
            "FATAL: fused batch-conv forward differs from per-example\n");
        std::exit(1);
      }
    }
  }
  // The fused batch backward (one dispatch: sink dW/db rows + col2im dX)
  // must likewise reproduce the per-example backward bit for bit.
  SplitRng grng(37);
  Tensor gyb({kBatch, kOutCh, kImg, kImg});
  gyb.FillGaussian(&grng, 1.0);
  size_t dim = conv.NumParams();
  std::vector<float> sink(kBatch * dim, 0.0f);
  conv.ForwardBatch(xb);  // re-arm the batched caches after the loop above
  Tensor dxb = conv.BackwardBatch(gyb, {sink.data(), dim, 0});
  for (size_t ex = 0; ex < kBatch; ++ex) {
    Tensor one({kInCh, kImg, kImg},
               std::vector<float>(xb.data() + ex * feat,
                                  xb.data() + (ex + 1) * feat));
    Tensor gy({kOutCh, kImg, kImg},
              std::vector<float>(gyb.data() + ex * out_stride,
                                 gyb.data() + (ex + 1) * out_stride));
    conv.Forward(one);
    conv.ZeroGrad();
    Tensor dx = conv.Backward(gy);
    std::vector<float> ex_grads;
    for (const nn::ParamView& v : conv.Params()) {
      ex_grads.insert(ex_grads.end(), v.grad, v.grad + v.size);
    }
    for (size_t j = 0; j < dx.size(); ++j) {
      if (dxb[ex * feat + j] != dx[j]) {
        std::fprintf(
            stderr,
            "FATAL: fused batch-conv backward dX differs from "
            "per-example\n");
        std::exit(1);
      }
    }
    for (size_t j = 0; j < dim; ++j) {
      if (sink[ex * dim + j] != ex_grads[j]) {
        std::fprintf(stderr,
                     "FATAL: fused batch-conv backward sink row differs "
                     "from per-example gradients\n");
        std::exit(1);
      }
    }
  }
  std::fprintf(stderr,
               "conv determinism check: pools {1,2,%zu} bit-identical, "
               "naive agreement within 1e-4, fused batch fwd+bwd == "
               "per-example\n",
               hw);
}

}  // namespace

int main(int argc, char** argv) {
  CheckConvDeterminism();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
