// Paper Figure 1 (CLAIM 4): accuracy of the dpbr protocol vs the
// Reference Accuracy across the privacy sweep under the Label-flipping
// attack at 20/40/60% Byzantine workers. Expected shape: the two curves
// align at every ε except the most extreme privacy levels.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dpbr;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  benchutil::Scale scale = benchutil::GetScale(flags);
  benchutil::PrintBanner(
      "bench_fig1_labelflip_sweep",
      "Figure 1 (Label-flip, 20-60% Byzantine, accuracy vs eps)", scale);

  TablePrinter table({"dataset", "byz", "eps", "dpbr", "reference"});
  for (const std::string& dataset : scale.datasets) {
    int honest = benchutil::DefaultHonest(dataset);
    for (double eps : scale.eps_grid) {
      core::ExperimentConfig base;
      base.dataset = dataset;
      base.epsilon = eps;
      base.num_honest = honest;
      base.seeds = scale.seeds;
      std::string ref_cell =
          benchutil::AccCell(benchutil::MustRunReference(base).accuracy);
      for (double frac : scale.byz_fractions) {
        core::ExperimentConfig c = base;
        c.aggregator = "dpbr";
        c.attack = "label_flip";
        c.num_byzantine = benchutil::ByzCountFor(honest, frac);
        table.AddRow({dataset, TablePrinter::Num(100 * frac, 0) + "%",
                      TablePrinter::Num(eps, 3),
                      benchutil::AccCell(benchutil::MustRun(c).accuracy),
                      ref_cell});
      }
    }
  }
  table.Print(std::cout);
  return 0;
}
