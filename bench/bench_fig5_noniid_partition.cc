// Paper supp. Figure 5: visualisation of Algorithm 4's non-i.i.d.
// partition — per-worker class proportions. Expected shape: strongly
// unequal per-class bars across workers (vs the flat 0.1 bars of i.i.d.).

#include <cstdio>

#include "bench_util.h"
#include "data/partition.h"
#include "data/registry.h"
#include "stats/summary.h"

using namespace dpbr;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  benchutil::Scale scale = benchutil::GetScale(flags);
  benchutil::PrintBanner("bench_fig5_noniid_partition",
                         "supp. Figure 5 (Algorithm 4 partition skew)",
                         scale);

  auto bundle = data::LoadBenchmark("synth_mnist", 42);
  if (!bundle.ok()) {
    std::fprintf(stderr, "%s\n", bundle.status().ToString().c_str());
    return 1;
  }
  const data::Dataset& train = bundle.value().train;
  const size_t kWorkers = 20;

  SplitRng rng(1);
  auto partition =
      data::PartitionNonIid(train.labels(), train.num_classes(), kWorkers,
                            &rng);
  if (!partition.ok()) {
    std::fprintf(stderr, "%s\n", partition.status().ToString().c_str());
    return 1;
  }

  std::printf("per-worker class ratios (rows: workers, cols: classes)\n");
  std::vector<double> all_ratios;
  for (size_t w = 0; w < kWorkers; ++w) {
    const auto& shard = partition.value()[w];
    std::vector<size_t> hist(train.num_classes(), 0);
    for (size_t idx : shard) hist[static_cast<size_t>(train.LabelAt(idx))]++;
    std::printf("w%02zu |", w);
    for (size_t c = 0; c < train.num_classes(); ++c) {
      double ratio = static_cast<double>(hist[c]) / shard.size();
      all_ratios.push_back(ratio);
      std::printf(" %.2f", ratio);
    }
    std::printf("\n");
  }
  double spread = stats::StdDev(all_ratios);
  std::printf(
      "\nstd of class ratios across workers = %.3f "
      "(i.i.d. baseline would be ~0.01; >0.05 confirms non-i.i.d.)\n",
      spread);
  return spread > 0.05 ? 0 : 1;
}
