// Paper Figure 2 (CLAIM 5): resilience when 90% of all workers are
// Label-flipping Byzantine attackers. Expected shape: dpbr still tracks
// the Reference Accuracy for ε ≥ 0.5, with a drop only at extreme
// privacy (ε ≤ 0.25).

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dpbr;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  benchutil::Scale scale = benchutil::GetScale(flags);
  benchutil::PrintBanner("bench_fig2_majority_byz",
                         "Figure 2 (90% Byzantine label-flip)", scale);

  // 90% Byzantine multiplies the worker population 10x; quick mode trims
  // the dataset list to one to stay fast.
  std::vector<std::string> datasets = scale.quick
                                          ? std::vector<std::string>{
                                                "synth_mnist"}
                                          : scale.datasets;

  TablePrinter table({"dataset", "eps", "dpbr @ 90% byz", "reference"});
  for (const std::string& dataset : datasets) {
    int honest = benchutil::DefaultHonest(dataset);
    for (double eps : scale.eps_grid) {
      core::ExperimentConfig base;
      base.dataset = dataset;
      base.epsilon = eps;
      base.num_honest = honest;
      base.seeds = scale.seeds;
      core::ExperimentConfig c = base;
      c.aggregator = "dpbr";
      c.attack = "label_flip";
      c.num_byzantine = benchutil::ByzCountFor(honest, 0.9);
      table.AddRow({dataset, TablePrinter::Num(eps, 3),
                    benchutil::AccCell(benchutil::MustRun(c).accuracy),
                    benchutil::AccCell(
                        benchutil::MustRunReference(base).accuracy)});
    }
  }
  table.Print(std::cout);
  return 0;
}
