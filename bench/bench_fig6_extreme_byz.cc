// Paper supp. Figures 6-17: extreme Byzantine fractions (95% and 99%).
// Expected shape: at ε = 2 the protocol still tracks the reference; the
// utility erodes as ε shrinks (exactly the paper's observed trade-off).
//
// Note on scale: 99% Byzantine means a 100x worker population. Quick mode
// uses a reduced honest population so the run stays minutes-scale.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dpbr;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  benchutil::Scale scale = benchutil::GetScale(flags);
  benchutil::PrintBanner("bench_fig6_extreme_byz",
                         "supp. Figures 6-17 (95% / 99% Byzantine)", scale);

  const std::string dataset = "synth_mnist";
  const int honest = scale.quick ? 5 : benchutil::DefaultHonest(dataset);
  std::vector<double> fractions = {0.95, 0.99};
  std::vector<std::string> attacks =
      scale.quick ? std::vector<std::string>{"opt_lmp"}
                  : std::vector<std::string>{"label_flip", "gaussian",
                                             "opt_lmp"};
  std::vector<double> eps_levels =
      scale.quick ? std::vector<double>{2.0}
                  : std::vector<double>{2.0, 0.5};

  core::ExperimentConfig ref_cfg;
  ref_cfg.dataset = dataset;
  ref_cfg.epsilon = 2.0;
  ref_cfg.num_honest = honest;
  ref_cfg.seeds = scale.seeds;

  TablePrinter table({"attack", "byz", "eps", "dpbr", "workers"});
  for (const std::string& attack : attacks) {
    for (double frac : fractions) {
      for (double eps : eps_levels) {
        core::ExperimentConfig c = ref_cfg;
        c.epsilon = eps;
        c.attack = attack;
        c.aggregator = "dpbr";
        c.num_byzantine = benchutil::ByzCountFor(honest, frac);
        table.AddRow({attack, TablePrinter::Num(100 * frac, 0) + "%",
                      TablePrinter::Num(eps, 3),
                      benchutil::AccCell(benchutil::MustRun(c).accuracy),
                      std::to_string(honest + c.num_byzantine)});
      }
    }
  }
  table.AddRow({"(reference)", "0%", "2.000",
                benchutil::AccCell(
                    benchutil::MustRunReference(ref_cfg).accuracy),
                std::to_string(honest)});
  table.Print(std::cout);
  return 0;
}
