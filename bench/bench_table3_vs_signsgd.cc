// Paper Table 3: ours vs Zhu & Ling [77] (DP sign-compressed majority
// vote) on MNIST under the Gaussian attack.
//
// Expected shape: the sign-SGD baseline keeps some signal only at small
// Byzantine fractions and low privacy; dpbr holds the reference level at
// a high privacy level even with a 60% Byzantine majority.

#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"

using namespace dpbr;

int main(int argc, char** argv) {
  Flags flags = Flags::Parse(argc, argv);
  benchutil::Scale scale = benchutil::GetScale(flags);
  benchutil::PrintBanner("bench_table3_vs_signsgd",
                         "Table 3 (comparison with [77] on MNIST)", scale);

  const std::string dataset = "synth_mnist";
  const int honest = benchutil::DefaultHonest(dataset);
  struct Row {
    const char* method;
    const char* aggregator;
    double byz_frac;
    double eps;
  };
  std::vector<Row> rows = {
      {"dp-sign [77]", "sign_sgd", 0.1, 0.25},
      {"dp-sign [77]", "sign_sgd", 0.1, 0.5},
      {"ours (dpbr)", "dpbr", 0.4, 0.125},
      {"ours (dpbr)", "dpbr", 0.6, 0.125},
  };

  TablePrinter table({"method", "byz", "eps", "gaussian_attack"});
  for (const Row& row : rows) {
    core::ExperimentConfig c;
    c.dataset = dataset;
    c.epsilon = row.eps;
    c.num_honest = honest;
    c.num_byzantine = benchutil::ByzCountFor(honest, row.byz_frac);
    c.attack = "gaussian";
    c.aggregator = row.aggregator;
    c.seeds = scale.seeds;
    table.AddRow({row.method, TablePrinter::Num(100 * row.byz_frac, 0) + "%",
                  TablePrinter::Num(row.eps, 3),
                  benchutil::AccCell(benchutil::MustRun(c).accuracy)});
  }
  core::ExperimentConfig ref;
  ref.dataset = dataset;
  ref.epsilon = 0.125;
  ref.num_honest = honest;
  ref.seeds = scale.seeds;
  table.AddRow({"reference (no attack)", "0%", "0.125",
                benchutil::AccCell(
                    benchutil::MustRunReference(ref).accuracy)});
  table.Print(std::cout);
  return 0;
}
