#!/usr/bin/env python3
"""Documentation lint gate: warnings are errors.

Checks README.md and every Markdown file under docs/ for the defects
that actually rot in a repo: dead relative links (files and heading
anchors), unbalanced or language-less code fences, malformed heading
structure, and stray tabs / trailing whitespace. No third-party
markdown-lint is assumed — the container has none — so the checks are
implemented here directly.

Usage:  python3 scripts/check_docs.py  (from anywhere; paths resolve
relative to the repo root, the parent of this script's directory).

Exit status 0 when clean, 1 with file:line diagnostics otherwise.
"""

import os
import re
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Inline links/images: [text](target) — target may carry a #fragment.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")


def doc_files():
    files = []
    readme = os.path.join(REPO_ROOT, "README.md")
    if os.path.exists(readme):
        files.append(readme)
    docs = os.path.join(REPO_ROOT, "docs")
    for dirpath, _, names in os.walk(docs):
        for name in sorted(names):
            if name.endswith(".md"):
                files.append(os.path.join(dirpath, name))
    return files


def github_anchor(heading_text):
    """The anchor GitHub generates for a heading."""
    text = re.sub(r"`([^`]*)`", r"\1", heading_text).strip().lower()
    text = re.sub(r"[^\w\- ]", "", text, flags=re.UNICODE)
    return text.replace(" ", "-")


def parse(path):
    """Returns (lines, headings, fence_errors, in_fence_mask)."""
    with open(path, encoding="utf-8") as f:
        lines = f.read().splitlines()
    headings = []  # (lineno, level, text)
    errors = []
    in_fence = False
    fence_open_line = 0
    mask = []
    for i, line in enumerate(lines, 1):
        stripped = line.strip()
        if stripped.startswith("```"):
            if not in_fence:
                in_fence = True
                fence_open_line = i
                if stripped == "```":
                    errors.append((i, "opening code fence without a "
                                      "language tag (use ```sh, ```text, "
                                      "...)"))
            else:
                in_fence = False
            mask.append(True)
            continue
        mask.append(in_fence)
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if m:
            headings.append((i, len(m.group(1)), m.group(2)))
    if in_fence:
        errors.append((fence_open_line, "unclosed code fence"))
    return lines, headings, errors, mask


def check_file(path, anchors_by_file):
    rel = os.path.relpath(path, REPO_ROOT)
    lines, headings, errors, mask = parse(path)

    for i, line in enumerate(lines, 1):
        if "\t" in line:
            errors.append((i, "hard tab"))
        if line != line.rstrip():
            errors.append((i, "trailing whitespace"))

    h1s = [h for h in headings if h[1] == 1]
    if len(h1s) != 1:
        errors.append((h1s[1][0] if len(h1s) > 1 else 1,
                       f"expected exactly one H1 title, found {len(h1s)}"))
    prev_level = 0
    for lineno, level, text in headings:
        if prev_level and level > prev_level + 1:
            errors.append((lineno, f"heading level jumps from "
                                   f"{prev_level} to {level}: '{text}'"))
        prev_level = level

    for i, line in enumerate(lines, 1):
        if mask[i - 1]:
            continue  # don't lint links inside code fences
        for m in LINK_RE.finditer(line):
            target = m.group(1)
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:
                continue
            frag = None
            if "#" in target:
                target, frag = target.split("#", 1)
            if target:
                dest = os.path.normpath(
                    os.path.join(os.path.dirname(path), target))
                if not (dest + os.sep).startswith(REPO_ROOT + os.sep):
                    continue  # escapes the repo (e.g. GitHub badge URLs)
                if not os.path.exists(dest):
                    errors.append((i, f"broken link: {m.group(1)}"))
                    continue
            else:
                dest = path
            if frag is not None and dest.endswith(".md"):
                if frag not in anchors_by_file.get(dest, set()):
                    errors.append((i, f"broken anchor: {m.group(1)}"))

    return [(rel, lineno, msg) for lineno, msg in sorted(errors)]


def main():
    files = doc_files()
    anchors_by_file = {}
    for path in files:
        _, headings, _, _ = parse(path)
        anchors_by_file[path] = {github_anchor(t) for _, _, t in headings}

    failures = []
    for path in files:
        failures.extend(check_file(path, anchors_by_file))

    for rel, lineno, msg in failures:
        print(f"{rel}:{lineno}: {msg}")
    if failures:
        print(f"\ndocs gate: {len(failures)} problem(s) in "
              f"{len(files)} file(s)")
        return 1
    print(f"docs gate: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
