#!/usr/bin/env python3
"""dpbr project lint: statically enforce the contracts the tests only
probe dynamically.

The repo's correctness story rests on prose contracts — bitwise
deterministic aggregation, grow-only workspaces with no allocation
inside `ParallelFor` bodies, per-ISA SIMD translation units reached only
through the dispatch table, and `Status`/`Result` error propagation.
This checker turns them into machine-checked rules over the
CMake-exported `compile_commands.json`.

Check families (each finding is tagged `[family-check]`):

  nondeterminism   nondet-rand        rand()/srand()/std::random_device &c.
                   nondet-time        time()/clock()/std::chrono::*_clock::now
                   nondet-unordered   std::unordered_{map,set} in result-
                                      producing src/ code (iteration order
                                      is libstdc++-specific)
  hotpath          hotpath-alloc      new/malloc/vector growth inside a
                                      lambda passed to ParallelFor[Blocked]
                   hotpath-lock       mutex/lock acquisition inside such a
                                      lambda
                   hotpath-io         stdio/iostream/file io inside such a
                                      lambda
  simd             simd-mflags        -m<isa> compile flags on any TU other
                                      than the per-ISA simd_*.cc
                   simd-intrinsics    ISA intrinsics / vector types outside
                                      the per-ISA TUs
                   simd-internal      simd_internal.h (the raw per-ISA
                                      tables) included outside the
                                      dispatcher
  status           status-discard     a Status/Result-returning call used
                                      as a bare expression statement

Backend: parses with python libclang when the `clang` bindings are
importable (exact token stream from the real compiler frontend), else a
built-in C++ lexer that understands comments, raw strings, char
literals and preprocessor lines. Both feed the same token pipeline, so
findings are identical on the constructs this codebase uses.

Suppression: append `// dpbr-lint: allow(check-a, check-b)` to the
offending line, or place the comment alone on the line directly above.
File-scope exemptions live in ALLOWLIST below, next to the check they
exempt.

Usage:
  python3 scripts/lint/dpbr_lint.py [-p BUILDDIR] [paths...]
  python3 scripts/lint/dpbr_lint.py --self-test
  python3 scripts/lint/dpbr_lint.py --list-checks

Exit status: 0 clean, 1 findings, 2 infrastructure error.
"""

import argparse
import fnmatch
import json
import os
import re
import sys

REPO_ROOT = os.path.dirname(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

# ---------------------------------------------------------------------------
# Configuration
# ---------------------------------------------------------------------------

# The per-ISA translation units: the only files allowed to carry -m<isa>
# compile flags or to use ISA intrinsics, and (with the dispatcher and
# its equivalence test) the only legal includers of simd_internal.h.
SIMD_ISA_TUS = {
    "src/common/simd_sse2.cc",
    "src/common/simd_avx2.cc",
    "src/common/simd_avx512.cc",
}
# simd_traits.h holds the width-templated intrinsic wrappers the per-ISA
# TUs instantiate; it necessarily spells intrinsics.
SIMD_INTRINSIC_FILES = SIMD_ISA_TUS | {"src/common/simd_traits.h"}
SIMD_INTERNAL_FILES = SIMD_ISA_TUS | {
    "src/common/simd.cc",
    "src/common/simd_internal.h",
    "tests/common/simd_test.cc",  # equivalence suite probes raw tables
}

# File-scope exemptions, check-pattern -> path globs (repo-relative).
# bench/, examples/ and tests/ are outside the linted set entirely (only
# src/ produces results that must be deterministic); entries here carve
# out src/ files whose *job* is the banned construct.
ALLOWLIST = {
    # Wall-clock timestamps in log lines and shutdown deadlines do not
    # feed any aggregation result.
    "nondet-time": ["src/common/logging.*", "src/common/shutdown.*"],
}

NONDET_RAND_IDENTS = {
    "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48",
    "random_device", "random_shuffle",
}
NONDET_TIME_CALL_IDENTS = {
    "time", "clock", "gettimeofday", "clock_gettime", "ftime",
}
NONDET_CLOCK_TYPES = {
    "system_clock", "steady_clock", "high_resolution_clock",
}
NONDET_UNORDERED = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset",
}

PARALLEL_DISPATCHERS = {"ParallelFor", "ParallelForBlocked"}
HOTPATH_ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "free",
    "push_back", "emplace_back", "resize", "reserve", "assign",
    "shrink_to_fit",
}
HOTPATH_LOCK_TYPES = {
    "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
    "lock_guard", "unique_lock", "scoped_lock", "shared_lock",
}
HOTPATH_LOCK_METHODS = {"lock", "unlock", "try_lock"}
HOTPATH_IO_IDENTS = {
    "printf", "fprintf", "puts", "fputs", "putchar", "fopen", "fclose",
    "fwrite", "fread", "fflush", "fsync", "fdatasync",
    "cout", "cerr", "clog", "ofstream", "ifstream", "fstream",
}

INTRINSIC_PREFIXES = ("_mm_", "_mm256_", "_mm512_", "__m128", "__m256",
                      "__m512")
INTRINSIC_HEADERS = {
    "immintrin.h", "x86intrin.h", "emmintrin.h", "xmmintrin.h",
    "smmintrin.h", "avxintrin.h", "avx2intrin.h", "avx512fintrin.h",
    "nmmintrin.h", "tmmintrin.h", "pmmintrin.h", "wmmintrin.h",
}
# ISA-selecting flags; -ffp-contract is deliberately NOT here (the
# per-ISA TUs legitimately pin it, and it changes codegen, not the ISA).
MFLAG_RE = re.compile(
    r"^-m(sse\w*|avx\w*|fma\w*|bmi\w*|f16c|aes|pclmul|popcnt|abm|"
    r"arch=.*|tune=.*)$")

ALL_CHECKS = [
    "nondet-rand", "nondet-time", "nondet-unordered",
    "hotpath-alloc", "hotpath-lock", "hotpath-io",
    "simd-mflags", "simd-intrinsics", "simd-internal",
    "status-discard",
]

# ---------------------------------------------------------------------------
# Tokenization
# ---------------------------------------------------------------------------


class Tok:
    """One lexical token: kind in {ident, punct, lit, comment}."""

    __slots__ = ("kind", "text", "line")

    def __init__(self, kind, text, line):
        self.kind = kind
        self.text = text
        self.line = line

    def __repr__(self):
        return f"Tok({self.kind},{self.text!r},{self.line})"


_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")
_NUM_RE = re.compile(r"\.?[0-9](?:[0-9a-zA-Z_.']|[eEpP][+-])*")
# Longest-match punctuators that matter for statement parsing.
_PUNCTS = ("->*", "<<=", ">>=", "...", "::", "->", "<<", ">>", "<=",
           ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "%=",
           "&=", "|=", "^=", "++", "--")


def tokenize_fallback(text):
    """Built-in C++ lexer. Comments become `comment` tokens (they carry
    the suppression annotations); string/char literals become `lit`
    tokens with their spelling preserved (include paths need it)."""
    toks = []
    i, n, line = 0, len(text), 1
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        if text.startswith("//", i):
            j = text.find("\n", i)
            j = n if j == -1 else j
            toks.append(Tok("comment", text[i:j], line))
            i = j
            continue
        if text.startswith("/*", i):
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            body = text[i:j + 2]
            toks.append(Tok("comment", body, line))
            line += body.count("\n")
            i = j + 2
            continue
        if c == '"' or (c == "R" and text.startswith('R"', i)):
            if c == "R":
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    delim = ")" + m.group(1) + '"'
                    j = text.find(delim, i + m.end())
                    j = n - len(delim) if j == -1 else j
                    body = text[i:j + len(delim)]
                    toks.append(Tok("lit", body, line))
                    line += body.count("\n")
                    i = j + len(delim)
                    continue
                # A plain identifier starting with R.
            if c == '"':
                j = i + 1
                while j < n and text[j] != '"':
                    j += 2 if text[j] == "\\" else 1
                toks.append(Tok("lit", text[i:j + 1], line))
                i = j + 1
                continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            # Digit separators (1'000) never reach here: the number
            # lexer consumes them inside _NUM_RE.
            toks.append(Tok("lit", text[i:j + 1], line))
            i = j + 1
            continue
        m = _IDENT_RE.match(text, i)
        if m:
            toks.append(Tok("ident", m.group(0), line))
            i = m.end()
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = _NUM_RE.match(text, i)
            toks.append(Tok("lit", m.group(0), line))
            i = m.end()
            continue
        if c == "\\" and i + 1 < n and text[i + 1] == "\n":
            line += 1
            i += 2
            continue
        for p in _PUNCTS:
            if text.startswith(p, i):
                toks.append(Tok("punct", p, line))
                i += len(p)
                break
        else:
            toks.append(Tok("punct", c, line))
            i += 1
    return toks


def tokenize_libclang(path, args):
    """Tokenize through python libclang when available; None on any
    failure (missing bindings, missing libclang.so, parse error) so the
    caller falls back to the built-in lexer."""
    try:
        from clang import cindex  # noqa: deferred optional import
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
        tu = index.parse(path, args=[a for a in args if a != "-c"],
                         options=cindex.TranslationUnit
                         .PARSE_DETAILED_PROCESSING_RECORD)
        kinds = cindex.TokenKind
        kind_map = {
            kinds.IDENTIFIER: "ident",
            kinds.KEYWORD: "ident",
            kinds.LITERAL: "lit",
            kinds.PUNCTUATION: "punct",
            kinds.COMMENT: "comment",
        }
        toks = []
        for t in tu.get_tokens(extent=tu.cursor.extent):
            if t.location.file and t.location.file.name != path:
                continue
            toks.append(Tok(kind_map.get(t.kind, "punct"), t.spelling,
                            t.location.line))
        return toks
    except Exception:  # noqa: any libclang failure -> fallback lexer
        return None


def tokenize_file(path, args=()):
    toks = tokenize_libclang(path, list(args))
    if toks is None:
        with open(path, encoding="utf-8", errors="replace") as f:
            toks = tokenize_fallback(f.read())
    return toks


# ---------------------------------------------------------------------------
# Findings and suppression
# ---------------------------------------------------------------------------


class Finding:
    __slots__ = ("path", "line", "check", "msg")

    def __init__(self, path, line, check, msg):
        self.path = path
        self.line = line
        self.check = check
        self.msg = msg


_ALLOW_RE = re.compile(r"dpbr-lint:\s*allow\(([^)]*)\)")


def collect_suppressions(toks):
    """Maps line -> set of allowed checks. An annotation suppresses its
    own line and the line below (for own-line comments)."""
    allowed = {}
    for t in toks:
        if t.kind != "comment":
            continue
        m = _ALLOW_RE.search(t.text)
        if not m:
            continue
        checks = {c.strip() for c in m.group(1).split(",") if c.strip()}
        last = t.line + t.text.count("\n")
        for line in (t.line, last, last + 1):
            allowed.setdefault(line, set()).update(checks)
    return allowed


def file_allowed(check, rel):
    return any(fnmatch.fnmatch(rel, pat)
               for pat in ALLOWLIST.get(check, []))


# ---------------------------------------------------------------------------
# Token stream helpers
# ---------------------------------------------------------------------------


def code_tokens(toks):
    return [t for t in toks if t.kind != "comment"]


def match_paren(toks, i):
    """Index of the `)`/`}`/`]` matching the opener at i, or len(toks)."""
    opener = toks[i].text
    closer = {"(": ")", "{": "}", "[": "]"}[opener]
    depth = 0
    for j in range(i, len(toks)):
        t = toks[j].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return j
    return len(toks)


def included_headers(toks):
    """(line, header) pairs for #include directives, both "" and <>."""
    out = []
    ct = toks
    for i, t in enumerate(ct):
        if t.text != "#" or i + 1 >= len(ct):
            continue
        if ct[i + 1].text != "include" or ct[i + 1].line != t.line:
            continue
        rest = [u for u in ct[i + 2:i + 12] if u.line == t.line]
        if not rest:
            continue
        if rest[0].kind == "lit":
            out.append((t.line, rest[0].text.strip('"')))
        elif rest[0].text == "<":
            name = "".join(u.text for u in rest[1:]
                           if u.text != ">" and u.line == t.line)
            end = [u.text for u in rest].index(">") if ">" in [
                u.text for u in rest] else len(rest)
            name = "".join(u.text for u in rest[1:end])
            out.append((t.line, name))
    return out


# ---------------------------------------------------------------------------
# Check family: nondeterminism
# ---------------------------------------------------------------------------


def check_nondeterminism(rel, toks, findings):
    ct = code_tokens(toks)
    # The usage is the finding; firing on the #include line too would
    # double-report every hit (and headers also arrive transitively).
    include_lines = {line for line, _ in included_headers(ct)}
    for i, t in enumerate(ct):
        if t.kind != "ident" or t.line in include_lines:
            continue
        nxt = ct[i + 1].text if i + 1 < len(ct) else ""
        if t.text in NONDET_RAND_IDENTS:
            findings.append(Finding(
                rel, t.line, "nondet-rand",
                f"'{t.text}' is a nondeterminism source; draw from a "
                "seeded SplitRng stream instead"))
        elif t.text in NONDET_TIME_CALL_IDENTS and nxt == "(":
            findings.append(Finding(
                rel, t.line, "nondet-time",
                f"'{t.text}()' reads the wall clock; results must not "
                "depend on when they run"))
        elif t.text in NONDET_CLOCK_TYPES:
            findings.append(Finding(
                rel, t.line, "nondet-time",
                f"'std::chrono::{t.text}' in result-producing code; "
                "clocks may only feed logging/shutdown (allowlisted "
                "files)"))
        elif t.text in NONDET_UNORDERED:
            findings.append(Finding(
                rel, t.line, "nondet-unordered",
                f"'std::{t.text}' iteration order is implementation-"
                "defined; use std::map/std::set or a sorted vector in "
                "result-producing code"))


# ---------------------------------------------------------------------------
# Check family: hot path (ParallelFor lambda bodies)
# ---------------------------------------------------------------------------


def _lambda_bodies_in_call(ct, open_paren, close_paren):
    """Yields (body_start, body_end) for every lambda literal directly
    inside the argument list [open_paren+1, close_paren)."""
    j = open_paren + 1
    while j < close_paren:
        t = ct[j]
        if t.text == "[":
            cap_end = match_paren(ct, j)
            # Skip parameter list / specifiers up to the body brace.
            k = cap_end + 1
            while k < close_paren and ct[k].text != "{":
                if ct[k].text == "(":
                    k = match_paren(ct, k) + 1
                else:
                    k += 1
            if k < close_paren and ct[k].text == "{":
                body_end = match_paren(ct, k)
                yield k, body_end
                j = body_end + 1
                continue
            j = cap_end + 1
            continue
        j += 1


def check_hotpath(rel, toks, findings):
    ct = code_tokens(toks)
    for i, t in enumerate(ct):
        if (t.kind != "ident" or t.text not in PARALLEL_DISPATCHERS
                or i + 1 >= len(ct) or ct[i + 1].text != "("):
            continue
        close = match_paren(ct, i + 1)
        for b0, b1 in _lambda_bodies_in_call(ct, i + 1, close):
            _scan_hot_body(rel, ct, b0 + 1, b1, findings)


def _scan_hot_body(rel, ct, lo, hi, findings):
    for i in range(lo, hi):
        t = ct[i]
        if t.kind != "ident":
            continue
        prev = ct[i - 1].text if i > 0 else ""
        nxt = ct[i + 1].text if i + 1 < len(ct) else ""
        if t.text == "new" and prev not in (".", "->", "::"):
            findings.append(Finding(
                rel, t.line, "hotpath-alloc",
                "'new' inside a ParallelFor body; allocate into a "
                "grow-only Workspace slot before dispatch"))
        elif t.text in HOTPATH_ALLOC_CALLS and nxt == "(":
            kind = ("heap allocation" if t.text in
                    ("malloc", "calloc", "realloc", "free")
                    else "container growth")
            findings.append(Finding(
                rel, t.line, "hotpath-alloc",
                f"'{t.text}' ({kind}) inside a ParallelFor body; "
                "size buffers before dispatch (grow-only Workspace "
                "rule, docs/architecture.md)"))
        elif t.text == "function" and prev == "::" and nxt == "<":
            findings.append(Finding(
                rel, t.line, "hotpath-alloc",
                "'std::function' inside a ParallelFor body; type "
                "erasure heap-allocates per call site — borrow the "
                "callable with FunctionRef (src/common/function_ref.h)"))
        elif t.text in HOTPATH_LOCK_TYPES:
            findings.append(Finding(
                rel, t.line, "hotpath-lock",
                f"'{t.text}' inside a ParallelFor body; bodies must "
                "be lock-free (shape-only splits own disjoint data)"))
        elif (t.text in HOTPATH_LOCK_METHODS and nxt == "("
              and prev in (".", "->")):
            findings.append(Finding(
                rel, t.line, "hotpath-lock",
                f"'.{t.text}()' inside a ParallelFor body; bodies "
                "must be lock-free"))
        elif t.text in HOTPATH_IO_IDENTS:
            findings.append(Finding(
                rel, t.line, "hotpath-io",
                f"'{t.text}' (I/O) inside a ParallelFor body; log "
                "and persist outside the dispatch"))


# ---------------------------------------------------------------------------
# Check family: SIMD TU hygiene
# ---------------------------------------------------------------------------


def check_simd_flags(rel, compile_args, findings):
    if rel in SIMD_ISA_TUS:
        return
    for arg in compile_args:
        if MFLAG_RE.match(arg):
            findings.append(Finding(
                rel, 0, "simd-mflags",
                f"ISA flag '{arg}' on a TU outside the per-ISA set "
                "{simd_sse2,avx2,avx512}.cc; codegen must stay "
                "ISA-portable so the scalar reference is reachable"))


def check_simd_source(rel, toks, findings):
    ct = code_tokens(toks)
    if rel not in SIMD_INTERNAL_FILES:
        for line, header in included_headers(ct):
            if header.endswith("simd_internal.h"):
                findings.append(Finding(
                    rel, line, "simd-internal",
                    "simd_internal.h exposes the raw per-ISA tables; "
                    "go through simd::Kernels() dispatch instead"))
    if rel not in SIMD_INTRINSIC_FILES:
        for line, header in included_headers(ct):
            if os.path.basename(header) in INTRINSIC_HEADERS:
                findings.append(Finding(
                    rel, line, "simd-intrinsics",
                    f"<{header}> outside the per-ISA TUs; intrinsics "
                    "live behind the SimdKernels dispatch table"))
        for t in ct:
            if t.kind == "ident" and t.text.startswith(INTRINSIC_PREFIXES):
                findings.append(Finding(
                    rel, t.line, "simd-intrinsics",
                    f"intrinsic '{t.text}' outside the per-ISA TUs; "
                    "add a SimdKernels entry point instead"))


# ---------------------------------------------------------------------------
# Check family: Status discipline
# ---------------------------------------------------------------------------

# Tokens that, appearing immediately before a call chain, mean the call
# result is consumed (assigned, returned, tested, passed, cast...).
_CONSUMED_BEFORE = {
    "=", "return", "(", ",", "!", "?", ":", "&&", "||", "==", "!=",
    "co_return", "<<", ">>", "+", "-", "*", "/", "%", "&", "|", "^",
    "+=", "-=", "*=", "/=",
}


def collect_status_functions(paths):
    """Scans headers/sources for functions declared to return Status or
    Result<T>; returns the set of their names. A name also declared with
    a different return type anywhere in the corpus is dropped — without
    type information a call through the ambiguous name cannot be
    attributed, and a heuristic linter must not cry wolf (the
    [[nodiscard]] attribute on Status/Result is the authoritative,
    type-aware enforcement; this check is the no-compiler belt)."""
    names = set()
    ambiguous = set()
    for path in paths:
        toks = code_tokens(tokenize_file(path))
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "ident" and t.text in ("Status", "Result"):
                j = i + 1
                if j < n and toks[j].text == "<":
                    # Skip the template argument list (no match_paren:
                    # '<' nests but never crosses a declaration).
                    depth = 0
                    while j < n:
                        if toks[j].text == "<":
                            depth += 1
                        elif toks[j].text == ">":
                            depth -= 1
                            if depth == 0:
                                break
                        elif toks[j].text in (";", "{"):
                            break
                        j += 1
                    j += 1
                if (j < n and toks[j].kind == "ident"
                        and j + 1 < n and toks[j + 1].text == "("
                        and toks[j].text not in ("OK", "operator")):
                    names.add(toks[j].text)
                i = j + 1
                continue
            # Declaration with a non-Status return type: `type Name(`.
            if (t.kind == "ident" and i + 2 < n
                    and toks[i + 1].kind == "ident"
                    and toks[i + 2].text == "("
                    and t.text not in ("return", "new", "case", "else",
                                       "co_return", "co_await")):
                ambiguous.add(toks[i + 1].text)
            i += 1
    return names - ambiguous



def check_status_discipline(rel, toks, status_fns, findings):
    ct = code_tokens(toks)
    n = len(ct)
    i = 0
    while i < n:
        # Statement starts: after ; { } or at token 0.
        if i > 0 and ct[i - 1].text not in (";", "{", "}"):
            i += 1
            continue
        # Walk a name chain: ident (:: . -> ident)* '('
        j = i
        last_name = None
        while j < n:
            if ct[j].kind == "ident":
                last_name = ct[j].text
                j += 1
                if j < n and ct[j].text in ("::", ".", "->"):
                    j += 1
                    continue
                break
            break
        if (last_name in status_fns and j < n and ct[j].text == "("
                and ct[i].text not in ("return", "if", "while", "for",
                                       "switch", "case", "delete")):
            close = match_paren(ct, j)
            if close + 1 < n and ct[close + 1].text == ";":
                findings.append(Finding(
                    rel, ct[i].line, "status-discard",
                    f"result of Status/Result-returning '{last_name}' "
                    "is discarded; propagate with DPBR_RETURN_NOT_OK, "
                    "handle it, or cast to (void) with a reason"))
                i = close + 1
                continue
        i += 1


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def load_compile_db(build_dir):
    db_path = os.path.join(build_dir, "compile_commands.json")
    if not os.path.exists(db_path):
        return None
    with open(db_path, encoding="utf-8") as f:
        entries = json.load(f)
    db = {}
    for e in entries:
        path = os.path.normpath(
            os.path.join(e.get("directory", ""), e["file"]))
        if "arguments" in e:
            args = e["arguments"]
        else:
            # Simple shell-split is fine for CMake-generated commands.
            args = e.get("command", "").split()
        db[path] = args
    return db


def repo_rel(path):
    return os.path.relpath(os.path.normpath(path), REPO_ROOT)


def lint_paths(build_dir):
    """(linted source files, header files, compile db) for src/."""
    db = load_compile_db(build_dir) or {}
    sources = sorted(p for p in db
                     if repo_rel(p).startswith("src" + os.sep))
    headers = []
    for dirpath, _, names in os.walk(os.path.join(REPO_ROOT, "src")):
        for name in sorted(names):
            if name.endswith(".h"):
                headers.append(os.path.join(dirpath, name))
    if not sources:
        # No compile db (e.g. fresh checkout): lint every .cc under src/
        # without per-TU flags; the simd-mflags check is skipped.
        for dirpath, _, names in os.walk(os.path.join(REPO_ROOT, "src")):
            for name in sorted(names):
                if name.endswith(".cc"):
                    sources.append(os.path.join(dirpath, name))
    return sources, headers, db


def run_checks(path, compile_args, status_fns):
    """All applicable checks for one file; returns surviving findings."""
    rel = repo_rel(path)
    toks = tokenize_file(path, compile_args)
    findings = []
    check_simd_flags(rel, compile_args, findings)
    check_simd_source(rel, toks, findings)
    check_nondeterminism(rel, toks, findings)
    check_hotpath(rel, toks, findings)
    check_status_discipline(rel, toks, status_fns, findings)
    allowed = collect_suppressions(toks)
    kept = []
    for f in findings:
        if f.check in allowed.get(f.line, ()):
            continue
        if file_allowed(f.check, rel):
            continue
        kept.append(f)
    return kept


def lint_tree(build_dir):
    sources, headers, db = lint_paths(build_dir)
    status_fns = collect_status_functions(headers)
    findings = []
    for path in headers + sources:
        findings.extend(run_checks(path, db.get(path, []), status_fns))
    return findings


# ---------------------------------------------------------------------------
# Self-test over tests/lint/ fixtures
# ---------------------------------------------------------------------------

_EXPECT_RE = re.compile(r"expect-lint:\s*([a-z0-9-]+(?:\s*,\s*[a-z0-9-]+)*)")
_FLAGS_RE = re.compile(r"lint-compile-flags:\s*(.+)")
_AS_RE = re.compile(r"lint-as:\s*(\S+)")


def self_test(fixture_dir):
    """Runs every check over the fixture corpus and demands an exact
    match between produced findings and `// expect-lint:` annotations.
    Fixture headers may carry `// lint-compile-flags: -mavx2 ...` (a
    synthetic compile-db entry) and `// lint-as: src/foo.cc` (the
    repo-relative identity the fixture is linted under)."""
    fixtures = []
    for dirpath, _, names in os.walk(fixture_dir):
        for name in sorted(names):
            if name.endswith((".cc", ".h")):
                fixtures.append(os.path.join(dirpath, name))
    if not fixtures:
        print(f"self-test: no fixtures under {fixture_dir}", file=sys.stderr)
        return 2

    # Status-returning names come from the fixture corpus itself, so the
    # status-discard fixture is hermetic.
    status_fns = collect_status_functions(fixtures)
    failures = []
    checks_fired = set()
    for path in fixtures:
        with open(path, encoding="utf-8") as f:
            text = f.read()
        toks = tokenize_fallback(text)
        compile_args = []
        lint_as = None
        for t in toks:
            if t.kind != "comment":
                continue
            fm = _FLAGS_RE.search(t.text)
            if fm:
                compile_args = fm.group(1).split()
            am = _AS_RE.search(t.text)
            if am:
                lint_as = am.group(1)
        rel = lint_as or repo_rel(path)

        expected = set()
        for t in toks:
            if t.kind != "comment":
                continue
            m = _EXPECT_RE.search(t.text)
            if m:
                for c in m.group(1).split(","):
                    expected.add((t.line, c.strip()))

        findings = []
        check_simd_flags(rel, compile_args, findings)
        check_simd_source(rel, toks, findings)
        check_nondeterminism(rel, toks, findings)
        check_hotpath(rel, toks, findings)
        check_status_discipline(rel, toks, status_fns, findings)
        allowed = collect_suppressions(toks)
        findings = [f for f in findings
                    if f.check not in allowed.get(f.line, ())
                    and not file_allowed(f.check, rel)]

        got = {(f.line, f.check) for f in findings}
        # simd-mflags findings carry line 0 (they come from the compile
        # command, not a source line); expectations use line 0 via a
        # comment anywhere -> normalize both sides.
        exp_mflags = {e for e in expected if e[1] == "simd-mflags"}
        got_mflags = {g for g in got if g[1] == "simd-mflags"}
        if exp_mflags and got_mflags:
            expected -= exp_mflags
            got -= got_mflags
            checks_fired.add("simd-mflags")
        checks_fired.update(c for _, c in got)
        base = os.path.relpath(path, fixture_dir)
        for line, check in sorted(expected - got):
            failures.append(f"{base}:{line}: expected [{check}] "
                            "but the linter did not fire")
        for line, check in sorted(got - expected):
            failures.append(f"{base}:{line}: unexpected [{check}] "
                            "finding")

    for check in ALL_CHECKS:
        if check not in checks_fired:
            failures.append(
                f"check [{check}] never fired on any fixture; add a "
                "known-bad fixture proving it works")

    if failures:
        for f in failures:
            print(f"self-test: {f}")
        print(f"\ndpbr_lint self-test: {len(failures)} failure(s) over "
              f"{len(fixtures)} fixture(s)")
        return 1
    print(f"dpbr_lint self-test: {len(fixtures)} fixture(s), all "
          f"{len(ALL_CHECKS)} checks fired and matched expectations")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("-p", "--build-dir", default=os.path.join(
        REPO_ROOT, "build"), help="directory holding "
        "compile_commands.json (default: ./build)")
    ap.add_argument("--self-test", action="store_true",
                    help="verify every check fires on its tests/lint/ "
                    "fixture and nowhere else")
    ap.add_argument("--fixture-dir", default=os.path.join(
        REPO_ROOT, "tests", "lint", "fixtures"))
    ap.add_argument("--list-checks", action="store_true")
    ap.add_argument("paths", nargs="*",
                    help="restrict linting to these files")
    args = ap.parse_args()

    if args.list_checks:
        for c in ALL_CHECKS:
            print(c)
        return 0
    if args.self_test:
        return self_test(args.fixture_dir)

    if args.paths:
        _, headers, db = lint_paths(args.build_dir)
        status_fns = collect_status_functions(headers)
        findings = []
        for p in args.paths:
            ap_ = os.path.abspath(p)
            findings.extend(run_checks(ap_, db.get(ap_, []), status_fns))
    else:
        findings = lint_tree(args.build_dir)

    findings.sort(key=lambda f: (f.path, f.line, f.check))
    for f in findings:
        loc = f"{f.path}:{f.line}" if f.line else f.path
        print(f"{loc}: [{f.check}] {f.msg}")
    if findings:
        print(f"\ndpbr_lint: {len(findings)} finding(s)")
        return 1
    print("dpbr_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
