#!/usr/bin/env python3
"""Gate benchmark results against the committed baseline.

Usage:
  scripts/check_bench_regression.py --baseline BENCH_baseline.json \
      bench_micro.json bench_nn.json

Reads one or more google-benchmark JSON outputs, merges their benchmark
lists, and enforces two kinds of gates:

  * Regression gates: every benchmark named in HOT_BENCHMARKS must not be
    more than REGRESSION_FACTOR slower (per-iteration time) than the same
    entry in the baseline file. Only slower fails — faster machines (CI
    runners vs the dev container that produced the baseline) pass freely.
  * Ratio gates: machine-independent relationships inside a single run,
    e.g. the ziggurat sampler must stay >= 3x the Box-Muller reference per
    draw. These hold on any hardware and are the strongest signal.

`--update BENCH_baseline.json` rewrites the baseline from the given
result files instead of gating (used to refresh committed numbers).

`--dump-merged PATH` additionally writes the merged results (with the
first file's machine context) in the baseline format — CI uploads this
per run so a multi-core runner's numbers can be committed verbatim as a
snapshot (BENCH_ci.json).

Exit status: 0 when every gate passes, 1 otherwise.
"""

import argparse
import json
import os
import sys

# Benchmarks whose per-iteration time is gated against the baseline.
# Names must match the google-benchmark "name" field exactly.
HOT_BENCHMARKS = [
    "BM_FillGaussianZiggurat/1048576",
    "BM_AddGaussianUpload/100000",
    "BM_KsTestGaussian/100000",
    "BM_FirstStageApply/50",
    "BM_DpbrAggregate/50",
    "BM_RdpEpsilon",
    "BM_NoiseMultiplierSearch",
    "BM_Conv2dForward",
    "BM_Conv2dForwardBatch",
    "BM_Conv2dBackward",
    "BM_Conv2dBackwardBatch",
    "BM_LinearBackwardBatch",
    "BM_GroupNormForwardBatch",
    "BM_GroupNormBackwardBatch",
    "BM_PoolForwardBatch",
    "BM_GemmConvShape",
    "BM_LocalStepCnn",
    "BM_LocalStepCnnForward",
    "BM_LocalStepCnnBackward",
    "BM_RoundUpload/1000",
    "BM_RoundUpload/10000",
    "BM_RoundUpload/100000",
    "BM_AggregateArena/1000",
    "BM_AggregateArena/10000",
    "BM_AggregateArena/100000",
    "BM_SimdGemmConvShape",
    "BM_SimdReluSweep",
    "BM_SimdKrumDistScan",
    "BM_SimdZigguratFill",
]

# A hot benchmark fails when run_time > baseline_time * REGRESSION_FACTOR.
# DPBR_BENCH_SLACK (a float multiplier) widens the bound for noisy hosts.
REGRESSION_FACTOR = 1.25

# (numerator, denominator, min_ratio, description): within one run,
# time(numerator) / time(denominator) must be >= min_ratio.
RATIO_GATES = [
    (
        "BM_FillGaussianBoxMuller/1048576",
        "BM_FillGaussianZiggurat/1048576",
        3.0,
        "ziggurat >= 3x Box-Muller per bulk Gaussian draw",
    ),
    (
        "BM_Conv2dForwardNaive",
        "BM_Conv2dForward",
        3.0,
        "GEMM conv forward >= 3x naive reference",
    ),
    # Parity floors for the batched backward dispatches: on one core the
    # fused single-dispatch backward sits at parity with the per-example
    # loop (identical serial per-element work; the multi-core win from
    # example-level parallelism only shows on CI runners — see
    # BENCH_ci.json), so the bound is parity minus run-to-run noise
    # (~8% observed at min_time=0.05). A lost fused path fails this by a
    # wide margin (e.g. a mis-batched kernel measured ~0.1x during
    # development); the structural one-dispatch + bitwise guarantees are
    # enforced exactly in tests/nn/kernel_equivalence_test.cc.
    (
        "BM_Conv2dBackwardBatchPerExample",
        "BM_Conv2dBackwardBatch",
        0.9,
        "batched conv backward >= per-example loop (parity floor)",
    ),
    # Linear's floor is lower: its dW is memory-bound, and the batched
    # side streams one distinct 64 KB sink row per example (the
    # per-example separation DP clipping requires) where the reference
    # rewrites a single cache-hot grad buffer — on one core that costs
    # ~10% at parity. Multi-core runners flip it decisively: the batched
    # dispatch parallelizes over examples while the m=1 per-example
    # GEMMs cannot parallelize at all.
    (
        "BM_LinearBackwardBatchPerExample",
        "BM_LinearBackwardBatch",
        0.85,
        "batched linear backward >= per-example loop (parity floor)",
    ),
    # Stage-fusion floors: the fused whole-CNN batched step (FusionPlan
    # active, ~3 dispatches per direction) against the plain per-layer
    # loop in the SAME run. Flop count and accumulation order are
    # bitwise identical; the fused win is dispatch amortization plus
    # panel locality (intermediate activations stay in per-thread
    # panels instead of round-tripping full batch tensors), so on one
    # core the bound is parity minus run-to-run noise (~8% observed at
    # min_time=0.05) and multi-core runners gain on top. A planner that
    # silently stops fusing degenerates to exactly 1.0x here — caught
    # first by the exact dispatch-count assertions in
    # tests/nn/kernel_equivalence_test.cc; these floors catch a fused
    # path that became slower than the loop it replaced.
    (
        "BM_LocalStepCnnForwardUnfused",
        "BM_LocalStepCnnForward",
        0.9,
        "fused CNN batched forward >= per-layer loop (parity floor)",
    ),
    (
        "BM_LocalStepCnnBackwardUnfused",
        "BM_LocalStepCnnBackward",
        0.9,
        "fused CNN fwd+bwd step >= per-layer loop (parity floor)",
    ),
    # SIMD-vs-scalar floors for the dispatched kernel layer
    # (bench_simd.cc): each pair runs the same kernel on the best
    # detected tier and pinned to the scalar reference, so the ratio is
    # machine-independent wherever AVX2 exists (dev container: GEMM
    # ~4.2x, ReLU ~10x, Krum scan ~2.6x). The ziggurat pair is reported
    # but ungated — its win is acceptance-rate-bound, ~1.1x.
    (
        "BM_ScalarGemmConvShape",
        "BM_SimdGemmConvShape",
        1.5,
        "SIMD GEMM microkernel >= 1.5x scalar reference",
    ),
    (
        "BM_ScalarReluSweep",
        "BM_SimdReluSweep",
        1.5,
        "SIMD ReLU sweep >= 1.5x scalar reference",
    ),
    (
        "BM_ScalarKrumDistScan",
        "BM_SimdKrumDistScan",
        1.5,
        "SIMD Krum distance scan >= 1.5x scalar reference",
    ),
]


def per_iteration_time(entry):
    """Per-iteration wall time in the entry's own unit-free seconds."""
    unit = {"ns": 1e-9, "us": 1e-6, "ms": 1e-3, "s": 1.0}[
        entry.get("time_unit", "ns")
    ]
    return entry["real_time"] * unit


def load_benchmarks(path):
    with open(path) as f:
        data = json.load(f)
    return {b["name"]: b for b in data.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}


def merge_results(paths):
    merged = {}
    for path in paths:
        for name, entry in load_benchmarks(path).items():
            if name in merged:
                print(f"warning: duplicate benchmark {name} "
                      f"(keeping first occurrence)")
                continue
            merged[name] = entry
    return merged


def update_baseline(baseline_path, result_paths, results, note):
    out = {"note": note}
    # Keep the machine context of the first result file so the baseline
    # records what hardware produced it.
    with open(result_paths[0]) as f:
        context = json.load(f).get("context")
    if context:
        out["context"] = context
    out["benchmarks"] = list(results.values())
    with open(baseline_path, "w") as f:
        json.dump(out, f, indent=1)
        f.write("\n")
    print(f"wrote {baseline_path} with {len(out['benchmarks'])} benchmarks")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON (BENCH_baseline.json)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the results "
                             "instead of gating")
    parser.add_argument("--note", default="refreshed baseline",
                        help="note stored when updating the baseline")
    parser.add_argument("--dump-merged", metavar="PATH",
                        help="also write the merged results + context to "
                             "PATH in the baseline format (CI snapshot "
                             "artifact)")
    parser.add_argument("results", nargs="+",
                        help="google-benchmark JSON output files")
    args = parser.parse_args()

    results = merge_results(args.results)
    if args.dump_merged:
        update_baseline(args.dump_merged, args.results, results,
                        "merged per-run results (CI snapshot candidate)")
    if args.update:
        update_baseline(args.baseline, args.results, results, args.note)
        return 0

    slack = float(os.environ.get("DPBR_BENCH_SLACK", "1.0"))
    baseline = load_benchmarks(args.baseline)
    failures = []

    print(f"{'benchmark':42s} {'baseline':>12s} {'run':>12s} {'ratio':>7s}")
    for name in HOT_BENCHMARKS:
        if name not in results:
            failures.append(f"{name}: missing from results")
            continue
        if name not in baseline:
            print(f"{name:42s} {'(new)':>12s} "
                  f"{per_iteration_time(results[name]):12.3e} {'-':>7s}")
            continue
        base_t = per_iteration_time(baseline[name])
        run_t = per_iteration_time(results[name])
        ratio = run_t / base_t
        bound = REGRESSION_FACTOR * slack
        flag = "" if ratio <= bound else "  <-- REGRESSION"
        print(f"{name:42s} {base_t:12.3e} {run_t:12.3e} {ratio:6.2f}x{flag}")
        if ratio > bound:
            failures.append(
                f"{name}: {ratio:.2f}x slower than baseline "
                f"(bound {bound:.2f}x)")

    print()
    for num, den, min_ratio, desc in RATIO_GATES:
        if num not in results or den not in results:
            failures.append(f"ratio gate '{desc}': {num} or {den} missing")
            continue
        ratio = (per_iteration_time(results[num]) /
                 per_iteration_time(results[den]))
        ok = ratio >= min_ratio
        print(f"ratio {num} / {den} = {ratio:.2f}x "
              f"(need >= {min_ratio}x) {'ok' if ok else '<-- FAIL'}")
        if not ok:
            failures.append(f"ratio gate '{desc}': {ratio:.2f}x "
                            f"< {min_ratio}x")

    if failures:
        print("\nBENCH GATE FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nbench gate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
