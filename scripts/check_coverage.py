#!/usr/bin/env python3
"""Gate the coverage job against a committed line-rate floor.

Usage:
  scripts/check_coverage.py --baseline COVERAGE_baseline.json \
      coverage/summary.json

Reads a gcovr `--json-summary` report and fails (exit 1) when the src/
line rate drops below the floor committed in COVERAGE_baseline.json —
the ratchet that turns the coverage job from advisory into a gate.

`--update` rewrites the baseline from the given summary instead of
gating, auto-suggesting a floor of (measured - margin) — the same UX as
check_bench_regression.py's `--update`. Run it against the summary
artifact of a representative CI run after intentionally adding or
removing tested code, and commit the result.

The floor is in line-percent points (0-100). The margin (default 2.0
points) absorbs run-to-run wobble: the quick test tier is deterministic,
but toolchain updates shift which lines gcov considers instrumentable.
"""

import argparse
import json
import sys


def load_line_percent(path):
    """Line rate in percent from a gcovr --json-summary report."""
    with open(path) as f:
        data = json.load(f)
    if "line_percent" in data:
        return float(data["line_percent"])
    # Older gcovr summary schemas: derive from the counts.
    covered = data.get("line_covered")
    total = data.get("line_total")
    if covered is None or total is None or total == 0:
        raise SystemExit(f"{path}: no line coverage fields found")
    return 100.0 * covered / total


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="committed floor file (COVERAGE_baseline.json)")
    parser.add_argument("--update", action="store_true",
                        help="rewrite the baseline from the summary "
                             "instead of gating")
    parser.add_argument("--margin", type=float, default=2.0,
                        help="points below the measured rate the suggested "
                             "floor sits at (with --update)")
    parser.add_argument("--note", default="refreshed coverage floor",
                        help="note stored when updating the baseline")
    parser.add_argument("summary",
                        help="gcovr --json-summary output for src/")
    args = parser.parse_args()

    percent = load_line_percent(args.summary)

    if args.update:
        floor = round(percent - args.margin, 1)
        out = {
            "note": args.note,
            "line_rate_floor": floor,
            "measured_line_percent": round(percent, 2),
        }
        with open(args.baseline, "w") as f:
            json.dump(out, f, indent=1)
            f.write("\n")
        print(f"wrote {args.baseline}: floor {floor:.1f}% "
              f"(measured {percent:.2f}%, margin {args.margin:.1f})")
        return 0

    with open(args.baseline) as f:
        floor = float(json.load(f)["line_rate_floor"])
    ok = percent >= floor
    print(f"src/ line coverage: {percent:.2f}% "
          f"(floor {floor:.1f}%) {'ok' if ok else '<-- BELOW FLOOR'}")
    if not ok:
        print("\nCOVERAGE GATE FAILED: the change drops tested-line "
              "coverage below the committed floor.\nEither add tests for "
              "the new code, or — when the drop is intentional — refresh "
              "the floor:\n  python3 scripts/check_coverage.py --baseline "
              "COVERAGE_baseline.json --update coverage/summary.json")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
